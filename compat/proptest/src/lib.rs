//! Offline sampling-only shim of the `proptest` API.
//!
//! crates.io is unreachable in this build environment, so the subset of
//! proptest the workspace's property tests use is implemented here:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] implemented for numeric ranges, tuples, [`Just`],
//!   mapped/boxed strategies and [`collection::vec`],
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//! * [`test_runner::TestCaseError`] for fallible helper functions.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (`Debug`) and the
//!   case number, but is not minimized.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test function name, so failures reproduce exactly across runs;
//!   there is no failure-persistence file.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test pseudo-random source handed to [`Strategy::sample`].
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for `test_name`, case `case`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name keeps seeds stable across runs and distinct
        // across tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform `f64` in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Uniform index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view of [`Strategy`] for boxing.
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.index(self.0.len());
        self.0[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy ([`prelude::any`]).
pub trait Arbitrary: Sized {
    /// Strategy type returned by [`prelude::any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty => $sample:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let bits = rng.next_u64();
                let f: fn(u64) -> $t = $sample;
                f(bits)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_prim! {
    bool => |b| b & 1 == 1,
    u8 => |b| b as u8,
    u16 => |b| b as u16,
    u32 => |b| b as u32,
    u64 => |b| b,
    usize => |b| b as usize,
    i64 => |b| b as i64,
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn uniformly from `len` (a `usize` range, as in real proptest).
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner types: configuration and the error carried by
/// `prop_assert!` failures.
pub mod test_runner {
    /// Runner configuration (subset: `cases` only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Failure of one generated case (from `prop_assert!` or helper `?`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure from any message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy};

    /// The canonical strategy for `T` (primitives only in this shim).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Assert a condition inside a proptest body; on failure, returns a
/// [`test_runner::TestCaseError`] (the enclosing generated runner reports
/// the case inputs and panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     /// Doc comments and attributes are kept.
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(any::<bool>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < 1_000, "x was {x}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 5u64..50, y in 1usize..=4, f in 0.25f64..0.75) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_vecs_and_oneof(
            v in crate::collection::vec((any::<bool>(), 0u64..10), 1..20),
            pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
            mapped in (0u32..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for &(_, n) in &v {
                prop_assert!(n < 10);
                helper(n)?;
            }
            prop_assert!(matches!(pick, 1..=3));
            prop_assert_eq!(mapped % 2, 0);
            prop_assert_eq!(mapped % 2, 0, "mapped {} must be even", mapped);
        }
    }

    #[test]
    fn seeding_is_deterministic_per_test_name() {
        let a = crate::TestRng::for_case("foo", 0).next_u64();
        let b = crate::TestRng::for_case("foo", 0).next_u64();
        let c = crate::TestRng::for_case("bar", 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    // The nested #[test] the macro expands to is unnameable by the harness
    // (it only exists so the macro works at module scope); we invoke the
    // generated fn by hand instead.
    #[allow(unnameable_test_items)]
    fn failing_property_reports_case_and_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x is only {x}");
            }
        }
        always_fails();
    }
}
