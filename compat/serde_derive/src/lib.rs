//! Stub `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The in-repo `serde` stub defines `Serialize` and `Deserialize` as empty
//! marker traits (nothing in the workspace performs real serialization —
//! there is no serializer crate in the offline dependency set), so the
//! derives only need to emit empty impls. Implemented directly on
//! `proc_macro` token streams: `syn`/`quote` are not available offline.
//!
//! Supported shapes: plain (non-generic) `struct`s and `enum`s, which is
//! every type the workspace derives on. Generic types are rejected with a
//! compile error rather than silently producing a broken impl.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct`/`enum` keyword, skipping
/// attributes, doc comments, visibility, and modifiers.
fn type_name(input: &TokenStream) -> Result<String, String> {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    match iter.next() {
                        Some(TokenTree::Ident(name)) => {
                            // Reject generic types: the next token would be `<`.
                            if let Some(TokenTree::Punct(p)) = iter.peek() {
                                if p.as_char() == '<' {
                                    return Err(format!(
                                        "stub serde derive does not support generic type `{name}`"
                                    ));
                                }
                            }
                            return Ok(name.to_string());
                        }
                        _ => return Err("expected a type name after struct/enum".into()),
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows.
                let _ = iter.next();
            }
            _ => {}
        }
    }
    Err("no struct/enum found in derive input".into())
}

fn emit(input: TokenStream, make_impl: impl Fn(&str) -> String) -> TokenStream {
    match type_name(&input) {
        Ok(name) => make_impl(&name).parse().expect("stub derive emitted invalid tokens"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Stub `Serialize` derive: an empty marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| format!("impl ::serde::Serialize for {name} {{}}"))
}

/// Stub `Deserialize` derive: an empty marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
