//! Offline stub of the `serde` facade.
//!
//! The workspace annotates its config/metrics types with
//! `#[derive(Serialize, Deserialize)]` for downstream users, but no code in
//! the offline dependency set ever serializes (there is no `serde_json` or
//! other serializer here). This stub keeps those annotations compiling
//! without network access to crates.io: [`Serialize`] and [`Deserialize`]
//! are empty marker traits and the derives emit empty impls.
//!
//! If a future change needs real serialization, replace this path
//! dependency with crates.io `serde` — the annotations are already correct.

// Let the derive-emitted `::serde::` paths resolve inside this crate's own
// tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
mod tests {
    use crate::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Plain {
        a: u64,
        b: Vec<String>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    #[allow(dead_code)]
    enum Choice {
        One,
        Two(u8),
        Three { x: i32 },
    }

    fn assert_impls<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_impls::<Plain>();
        assert_impls::<Choice>();
    }
}
