//! Offline drop-in subset of the `rand` crate API.
//!
//! The workspace builds in environments with no access to crates.io, so the
//! small slice of `rand` 0.8 it actually uses is implemented here:
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic generator
//!   (xoshiro256++, the same family rand 0.8 uses on 64-bit targets).
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 state expansion.
//! * [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] for the types the
//!   workspace samples (`f64`, `bool`, and the integer ranges).
//!
//! The streams are **not** bit-identical to crates.io `rand`: every
//! committed golden number in this repository was produced with this
//! implementation. Determinism is what matters — the same seed always
//! yields the same stream.

/// Low-level generator interface: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f64` in [0, 1),
    /// `bool` fair coin, integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`] from 64 random bits.
pub trait Standard {
    /// Map 64 uniform bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer sampling over a span of `n` values starting at `low`,
/// via 128-bit widening multiply with rejection (Lemire's method) — unbiased
/// and branch-light.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless lo < 2^64 mod span.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + sample_span(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + sample_span(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 as u64).wrapping_sub(self.start as i64 as u64);
                self.start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span =
                    (end as i64 as u64).wrapping_sub(start as i64 as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small/fast generator family `rand 0.8` uses for
    /// its `SmallRng` on 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 step: expands a 64-bit seed into full generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 should appear");
        for _ in 0..1_000 {
            let x = rng.gen_range(5u64..=8);
            assert!((5..=8).contains(&x));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(3u32..=3), 3);
    }

    #[test]
    fn float_range_sampling() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_600..5_400).contains(&heads), "heads {heads}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
